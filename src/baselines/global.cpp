#include "baselines/global.hpp"

#include <cmath>

#include "proto/payload_pool.hpp"
#include "util/log.hpp"

namespace hc3i::baselines {

namespace {
constexpr std::uint64_t kCtl = 64;

using net::payload_as;
}  // namespace

// ---------------------------------------------------------------------------
// GlobalRuntime
// ---------------------------------------------------------------------------

GlobalRuntime::GlobalRuntime(const config::RunSpec& spec, bool hierarchical)
    : spec_(spec), hierarchical_(hierarchical) {
  spec_.validate();
  const std::size_t n = spec_.topology.cluster_count();
  stores_.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    const std::uint32_t nodes = spec_.topology.clusters[c].nodes;
    stores_.push_back(std::make_unique<proto::ClcStore>(
        ClusterId{static_cast<std::uint32_t>(c)}, nodes,
        nodes > 1 ? 1u : 0u));
  }
}

proto::AgentFactory GlobalRuntime::factory() {
  return [this](const proto::AgentContext& ctx) {
    auto agent = std::make_unique<GlobalAgent>(ctx, *this);
    agents_.push_back(agent.get());
    return agent;
  };
}

void GlobalRuntime::set_channel(SeqNum sn, std::vector<net::Envelope> channel) {
  channels_[sn] = std::move(channel);
}

const std::vector<net::Envelope>& GlobalRuntime::channel(SeqNum sn) const {
  static const std::vector<net::Envelope> kEmpty;
  const auto it = channels_.find(sn);
  return it == channels_.end() ? kEmpty : it->second;
}

proto::AgentFactory global_factory(GlobalRuntime& rt) { return rt.factory(); }

// ---------------------------------------------------------------------------
// GlobalAgent
// ---------------------------------------------------------------------------

GlobalAgent::GlobalAgent(const proto::AgentContext& ctx, GlobalRuntime& rt)
    : AgentBase(ctx), rt_(rt) {}

std::uint32_t GlobalAgent::local_index(NodeId n) const {
  return n.v - ctx_.topology->first_node(ctx_.topology->cluster_of(n)).v;
}

proto::NodePart GlobalAgent::make_part() const {
  proto::NodePart part;
  part.app = ctx_.app->snapshot();
  return part;
}

SimTime GlobalAgent::restore_delay() const {
  const auto& san = rt_.spec().topology.clusters[cluster().v].san;
  SimTime delay = san.latency;
  if (std::isfinite(san.bytes_per_sec)) {
    delay += from_seconds_f(
        static_cast<double>(rt_.spec().application.state_bytes) /
        san.bytes_per_sec);
  }
  return delay;
}

void GlobalAgent::start() {
  if (!is_global_coordinator()) return;
  // One federation-wide period: the first cluster's timer drives the runs
  // (the paper's baselines have no per-cluster autonomy by construction).
  const SimTime period = rt_.spec().timers.clusters[0].clc_period;
  timer_ = std::make_unique<sim::Timer>(*ctx_.sim, period, /*periodic=*/true,
                                        [this] { on_timer(); });
  timer_->arm();
  ctx_.sim->schedule_after(SimTime::zero(), [this] { begin_round(); });
}

void GlobalAgent::on_timer() {
  if (round_active_ || rollback_pending_) return;
  begin_round();
}

void GlobalAgent::begin_round() {
  if (round_active_ || rollback_pending_) return;
  round_active_ = true;
  round_ = next_round_++;
  round_started_ = now();
  parts_.assign(ctx_.topology->node_count(), std::nullopt);
  acks_received_ = 0;
  auto req = proto::make_pooled<GReq>();
  req->round = round_;
  req->inc = inc_;
  if (rt_.hierarchical()) {
    // Two-level: only the cluster coordinators are contacted over the WAN;
    // they broadcast locally ([9]'s relaxed synchronisation).
    for (std::size_t c = 0; c < rt_.cluster_count(); ++c) {
      send_control_or_local(
          coordinator_of(ClusterId{static_cast<std::uint32_t>(c)}), kCtl, req);
    }
  } else {
    // Flat: every node is contacted directly (WAN crossing per node).
    for (std::uint32_t n = 0; n < ctx_.topology->node_count(); ++n) {
      send_control_or_local(NodeId{n}, kCtl, req);
    }
  }
}

void GlobalAgent::handle_req(const GReq& m) {
  if (m.inc != inc_ || rollback_pending_) return;
  if (rt_.hierarchical() && is_cluster_coordinator() && m.round != cluster_round_) {
    // Relay into the cluster, then take our own tentative checkpoint.
    cluster_round_ = m.round;
    cluster_parts_.assign(ctx_.topology->cluster_size(cluster()), std::nullopt);
    cluster_acks_ = 0;
    auto req = proto::make_pooled<GReq>();
    req->round = m.round;
    req->inc = inc_;
    broadcast_control(cluster(), kCtl, std::move(req), /*include_self=*/false);
  }
  take_tentative(m.round);
}

void GlobalAgent::take_tentative(std::uint64_t round) {
  if (in_round_) return;
  in_round_ = true;
  round_ = round;
  tentative_ = make_part();
  auto ack = proto::make_pooled<GAck>();
  ack->round = round;
  ack->inc = inc_;
  ack->node = self();
  ack->part = *tentative_;
  const NodeId target = rt_.hierarchical() ? coordinator_of(cluster())
                                           : NodeId{0};
  send_control_or_local(target, kCtl, std::move(ack));
}

void GlobalAgent::handle_ack(const GAck& m) {
  if (m.inc != inc_) return;
  if (rt_.hierarchical()) {
    // Node acks always aggregate at the cluster coordinator (node 0 plays
    // both roles for cluster 0: it aggregates here and receives the
    // resulting GClusterAck as the global coordinator).
    if (m.round != cluster_round_) return;
    const std::uint32_t idx = local_index(m.node);
    if (cluster_parts_[idx].has_value()) return;
    cluster_parts_[idx] = m.part;
    if (++cluster_acks_ < cluster_parts_.size()) return;
    auto cack = proto::make_pooled<GClusterAck>();
    cack->round = cluster_round_;
    cack->inc = inc_;
    cack->cluster = cluster();
    cack->parts.reserve(cluster_parts_.size());
    for (auto& p : cluster_parts_) cack->parts.push_back(std::move(*p));
    send_control_or_local(NodeId{0}, kCtl, std::move(cack));
    return;
  }
  // Flat mode, at the global coordinator.
  if (!round_active_ || m.round != round_) return;
  if (parts_[m.node.v].has_value()) return;
  parts_[m.node.v] = m.part;
  if (++acks_received_ == parts_.size()) commit_round();
}

void GlobalAgent::handle_cluster_ack(const GClusterAck& m) {
  if (m.inc != inc_ || !round_active_ || m.round != round_) return;
  const std::uint32_t base = ctx_.topology->first_node(m.cluster).v;
  if (parts_[base].has_value()) return;  // duplicate cluster ack
  for (std::size_t i = 0; i < m.parts.size(); ++i) {
    parts_[base + i] = m.parts[i];
    ++acks_received_;
  }
  if (acks_received_ == parts_.size()) commit_round();
}

void GlobalAgent::commit_round() {
  const SeqNum new_sn = sn_ + 1;
  const std::uint64_t mark = ctx_.ledger->mark();
  // One record per cluster, all with the global SN.
  for (std::size_t c = 0; c < rt_.cluster_count(); ++c) {
    const ClusterId cid{static_cast<std::uint32_t>(c)};
    proto::ClcRecord rec;
    rec.sn = new_sn;
    rec.ddv = proto::Ddv(rt_.cluster_count(), cid, new_sn);
    rec.commit_time = now();
    rec.ledger_mark = mark;
    rec.forced = false;
    const std::uint32_t base = ctx_.topology->first_node(cid).v;
    for (std::uint32_t i = 0; i < ctx_.topology->cluster_size(cid); ++i) {
      rec.parts.push_back(std::move(*parts_[base + i]));
    }
    rt_.store(cid).commit(std::move(rec));
    if (stat_clc_by_cluster_.size() <= c) {
      stat_clc_by_cluster_.resize(rt_.cluster_count(), {nullptr, nullptr});
    }
    auto& [clc_total, clc_unforced] = stat_clc_by_cluster_[c];
    stats::lazy_counter(*ctx_.registry, clc_total, [c] {
      return "clc.total.c" + std::to_string(c);
    }).inc();
    stats::lazy_counter(*ctx_.registry, clc_unforced, [c] {
      return "clc.unforced.c" + std::to_string(c);
    }).inc();
  }
  // Global channel state: every application message still in flight, plus
  // every node's deferred arrivals.
  std::vector<net::Envelope> channel =
      ctx_.network->snapshot_in_flight([](const net::Envelope& e) {
        return e.cls == net::MsgClass::kApp;
      });
  for (const GlobalAgent* a : rt_.agents()) {
    channel.insert(channel.end(), a->deferred_.begin(), a->deferred_.end());
  }
  rt_.set_channel(new_sn, std::move(channel));

  named_summary(stat_freeze_, "global.freeze_s")
      .add((now() - round_started_).seconds());
  round_active_ = false;
  auto commit = proto::make_pooled<GCommit>();
  commit->round = round_;
  commit->inc = inc_;
  commit->sn = new_sn;
  if (rt_.hierarchical()) {
    for (std::size_t c = 0; c < rt_.cluster_count(); ++c) {
      send_control_or_local(
          coordinator_of(ClusterId{static_cast<std::uint32_t>(c)}), kCtl,
          commit);
    }
  } else {
    for (std::uint32_t n = 0; n < ctx_.topology->node_count(); ++n) {
      send_control_or_local(NodeId{n}, kCtl, commit);
    }
  }
}

void GlobalAgent::handle_commit(const GCommit& m) {
  if (m.inc != inc_ || rollback_pending_) return;
  if (rt_.hierarchical() && is_cluster_coordinator() && m.round == cluster_round_) {
    // Relay the commit into the cluster once.
    cluster_round_ = 0;
    broadcast_control(cluster(), kCtl, proto::make_pooled<GCommit>(m),
                      /*include_self=*/false);
  }
  if (!in_round_ || m.round != round_) return;
  sn_ = m.sn;
  in_round_ = false;
  tentative_.reset();
  if (is_global_coordinator() && timer_) timer_->reset();
  auto sends = std::move(queued_sends_);
  queued_sends_.clear();
  for (const QueuedSend& q : sends) {
    net::Piggyback piggy;
    piggy.sn = sn_;
    piggy.incarnation = inc_;
    send_app(q.dst, q.bytes, q.app_seq, piggy);
  }
  auto arrivals = std::move(deferred_);
  deferred_.clear();
  for (const net::Envelope& env : arrivals) on_message(env);
}

void GlobalAgent::app_send(NodeId dst, std::uint64_t bytes,
                           std::uint64_t app_seq) {
  if (rollback_pending_) return;
  if (in_round_) {
    queued_sends_.push_back(QueuedSend{dst, bytes, app_seq});
    return;
  }
  net::Piggyback piggy;
  piggy.sn = sn_;
  piggy.incarnation = inc_;
  send_app(dst, bytes, app_seq, piggy);
}

void GlobalAgent::on_message(const net::Envelope& env) {
  if (env.cls == net::MsgClass::kApp) {
    // Stale pre-rollback traffic: whole-federation rollbacks undo every
    // send newer than the restored checkpoint.
    if (env.piggy.incarnation < inc_ && env.piggy.sn >= sn_) {
      named_stat(stat_stale_dropped_, "cic.stale_dropped").inc();
      return;
    }
    if (rollback_pending_) {
      post_rollback_stash_.push_back(env);
      return;
    }
    if (in_round_) {
      deferred_.push_back(env);
      return;
    }
    deliver_app(env);
    return;
  }
  if (const auto* m = payload_as<GReq>(env)) return handle_req(*m);
  if (const auto* m = payload_as<GAck>(env)) return handle_ack(*m);
  if (const auto* m = payload_as<GClusterAck>(env))
    return handle_cluster_ack(*m);
  if (const auto* m = payload_as<GCommit>(env)) return handle_commit(*m);
  HC3I_UNREACHABLE("GlobalAgent: unknown control payload");
}

void GlobalAgent::on_failure_detected(NodeId failed) {
  named_stat(stat_rollback_faults_, "rollback.faults").inc();
  (void)failed;
  global_rollback(/*fault_origin=*/true, cluster());
}

void GlobalAgent::global_rollback(bool fault_origin, ClusterId fault_cluster) {
  const Incarnation new_inc = rt_.bump_incarnation();
  HC3I_CHECK(!rt_.store(ClusterId{0}).empty(), "no global checkpoint");
  const SeqNum target_sn = rt_.store(ClusterId{0}).last().sn;
  HC3I_TRACE(kProtocol, now(),
             "GLOBAL rollback to sn=" << target_sn << " inc=" << new_inc);

  // Everything in flight belongs to the undone epoch.
  ctx_.network->drop_in_flight(
      [](const net::Envelope& e) { return e.cls == net::MsgClass::kApp; });

  for (std::size_t c = 0; c < rt_.cluster_count(); ++c) {
    const ClusterId cid{static_cast<std::uint32_t>(c)};
    const proto::ClcRecord& rec = rt_.store(cid).last();
    HC3I_CHECK(rec.sn == target_sn, "global stores out of sync");
    ctx_.ledger->undo_after(cid, rec.ledger_mark);
    named_stat(stat_rollback_count_, "rollback.count").inc();
    named_stat(stat_rollback_nodes_, "rollback.nodes")
        .inc(ctx_.topology->cluster_size(cid));
    named_summary(stat_rollback_depth_, "rollback.depth_clcs")
        .add(static_cast<double>(sn_ - rec.sn));
    const std::uint32_t base = ctx_.topology->first_node(cid).v;
    for (std::uint32_t i = 0; i < ctx_.topology->cluster_size(cid); ++i) {
      rt_.agents()[base + i]->apply_rollback(rec, new_inc);
    }
  }
  if (fault_origin) {
    pending_fault_recovery_ = true;
    pending_fault_cluster_ = fault_cluster;
  }

  // Resume all clusters after the slowest state transfer; re-inject the
  // global channel afterwards.
  SimTime delay = SimTime::zero();
  for (const GlobalAgent* a : rt_.agents()) {
    delay = std::max(delay, a->restore_delay());
  }
  ctx_.sim->schedule_after(delay, [this, new_inc, target_sn] {
    if (inc_ != new_inc) return;
    for (GlobalAgent* a : rt_.agents()) {
      const ClusterId cid = a->cluster();
      a->resume(rt_.store(cid).last());
    }
    for (const net::Envelope& env : rt_.channel(target_sn)) {
      rt_.agents()[env.dst.v]->on_message(env);
    }
    if (pending_fault_recovery_) {
      pending_fault_recovery_ = false;
      ctx_.recovery_done(pending_fault_cluster_);
    }
  });
}

void GlobalAgent::apply_rollback(const proto::ClcRecord& rec,
                                 Incarnation new_inc) {
  const proto::AppSnapshot current = ctx_.app->snapshot();
  const SimTime lost =
      current.virtual_work - rec.parts[local_index(self())].app.virtual_work;
  if (lost.ns > 0) {
    named_summary(stat_lost_work_, "rollback.lost_work_s")
        .add(lost.seconds());
  }
  sn_ = rec.sn;
  inc_ = new_inc;
  in_round_ = false;
  tentative_.reset();
  queued_sends_.clear();
  deferred_.clear();
  post_rollback_stash_.clear();
  round_active_ = false;
  cluster_round_ = 0;
  if (timer_) timer_->cancel();
  rollback_pending_ = true;
  ctx_.app->freeze();
}

void GlobalAgent::resume(const proto::ClcRecord& rec) {
  rollback_pending_ = false;
  ctx_.app->restore(rec.parts[local_index(self())].app);
  if (is_global_coordinator() && timer_) timer_->reset();
  auto stash = std::move(post_rollback_stash_);
  post_rollback_stash_.clear();
  for (const net::Envelope& env : stash) on_message(env);
}

}  // namespace hc3i::baselines
