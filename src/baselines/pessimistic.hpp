#pragma once

// Pessimistic message-logging baseline (MPICH-V-like; paper §6):
// "All the communications are logged and can be replayed.  This avoids all
// dependencies so that a faulty node will rollback, but not the others.
// But this means that strong assumptions upon determinism have to be made."
//
// Model: every node checkpoints independently on its own timer (no 2PC, no
// coordination); every delivered application message is also copied to a
// stable "channel memory" (the ring neighbour — doubling delivery traffic,
// the characteristic MPICH-V overhead).  On a failure only the failed node
// restores its last checkpoint; its received messages since then are
// replayed in order from the channel memory, and its sends re-execute
// identically under the PWD assumption (the workload must run in
// ReplayMode::kDeterministic — the driver enforces it).  Receivers
// de-duplicate re-executed sends by app_seq.
//
// Caveat: recovery re-executes the victim's lost work in simulated time
// (up to one checkpoint period), during which the rest of the federation
// is consistently *ahead* of the victim.  A failure injected without that
// much runway before the application horizon leaves the replay cut off,
// so the driver stops automatic failure injection one checkpoint period
// (plus slack) before the end of the run.

#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "config/spec.hpp"
#include "proto/agent_base.hpp"
#include "proto/snapshot.hpp"
#include "sim/timer.hpp"

namespace hc3i::baselines {

class PessimisticAgent;

/// Shared bookkeeping for the pessimistic-logging run.
class PessimisticRuntime {
 public:
  explicit PessimisticRuntime(const config::RunSpec& spec);

  proto::AgentFactory factory();
  const config::RunSpec& spec() const { return spec_; }
  const std::vector<PessimisticAgent*>& agents() const { return agents_; }

 private:
  friend class PessimisticAgent;
  config::RunSpec spec_;
  std::vector<PessimisticAgent*> agents_;
};

/// Per-node pessimistic-logging agent.
class PessimisticAgent final : public proto::AgentBase {
 public:
  PessimisticAgent(const proto::AgentContext& ctx, PessimisticRuntime& rt);

  void start() override;
  void app_send(NodeId dst, std::uint64_t bytes, std::uint64_t app_seq) override;
  void on_message(const net::Envelope& env) override;
  void on_failure_detected(NodeId failed) override;

  /// Messages in this node's replay log (since its last checkpoint).
  std::size_t receive_log_size() const { return receive_log_.size(); }

 private:
  /// Copy of a delivered message persisted at the channel memory.
  struct LogCopy final : net::ControlPayload {
    static constexpr std::uint32_t kKind = 30;
    LogCopy() : ControlPayload(kKind) {}
    // Only the modelled bytes matter; the original stays at the receiver.
  };

  void take_checkpoint();
  void restore_failed_node();

  PessimisticRuntime& rt_;
  // Pre-resolved stats handles (per-message paths; see AgentBase::named_stat).
  stats::Counter* stat_clc_total_{nullptr};
  stats::Counter* stat_node_ckpts_{nullptr};
  stats::Counter* stat_dup_dropped_{nullptr};
  stats::Counter* stat_log_copies_{nullptr};
  stats::Counter* stat_replayed_{nullptr};
  proto::AppSnapshot checkpoint_;
  std::uint64_t checkpoint_mark_{0};
  std::vector<net::Envelope> receive_log_;  ///< deliveries since checkpoint
  // lint: unordered-ok(membership-only duplicate filter; counters count
  // drops as they happen, nothing ever iterates the set)
  std::unordered_set<std::uint64_t> dedup_; ///< all-time delivered app_seqs
  bool rollback_pending_{false};
  std::vector<net::Envelope> post_rollback_stash_;
  std::unique_ptr<sim::Timer> timer_;
};

/// Build a factory; the runtime must outlive the federation.
proto::AgentFactory pessimistic_factory(PessimisticRuntime& rt);

}  // namespace hc3i::baselines
