#pragma once

// Coordinated checkpointing across the whole federation — the strawman the
// paper rejects in §2.2 ("The large number of nodes and network performance
// between clusters do not allow a global synchronization") — plus the
// two-level hierarchical-coordinated variant of Paul, Gupta & Badrinath
// ([9] in the paper, discussed in §6).
//
// Flat mode: a single federation coordinator two-phase-commits a global
// checkpoint with every node directly: each request/ack crosses the WAN per
// node.  Hierarchical mode: the federation coordinator talks only to the
// cluster coordinators, which run the phase locally and report one
// aggregate ack — far fewer WAN crossings and a shorter freeze, the
// improvement [9] claims.  Both freeze application traffic between request
// and commit, both roll *every* cluster back to the last committed global
// checkpoint on any failure (no dependency tracking, no logging).
//
// The ablation bench contrasts: freeze time per checkpoint, WAN control
// bytes, clusters rolled back per failure, rollback depth.

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "config/spec.hpp"
#include "proto/agent_base.hpp"
#include "proto/clc_store.hpp"
#include "sim/timer.hpp"

namespace hc3i::baselines {

class GlobalAgent;

/// Shared state for the coordinated-global / hierarchical-coordinated runs.
class GlobalRuntime {
 public:
  /// `hierarchical` selects the two-level [9] variant.
  GlobalRuntime(const config::RunSpec& spec, bool hierarchical);

  proto::AgentFactory factory();

  bool hierarchical() const { return hierarchical_; }
  const config::RunSpec& spec() const { return spec_; }
  std::size_t cluster_count() const { return spec_.topology.cluster_count(); }

  /// Per-cluster stores of the global checkpoints (same SN everywhere).
  proto::ClcStore& store(ClusterId c) { return *stores_[c.v]; }

  /// Global channel state captured with checkpoint `sn`.
  void set_channel(SeqNum sn, std::vector<net::Envelope> channel);
  const std::vector<net::Envelope>& channel(SeqNum sn) const;

  Incarnation incarnation() const { return inc_; }
  Incarnation bump_incarnation() { return ++inc_; }

  const std::vector<GlobalAgent*>& agents() const { return agents_; }

 private:
  friend class GlobalAgent;
  config::RunSpec spec_;
  bool hierarchical_;
  std::vector<std::unique_ptr<proto::ClcStore>> stores_;
  std::map<SeqNum, std::vector<net::Envelope>> channels_;
  Incarnation inc_{0};
  std::vector<GlobalAgent*> agents_;  ///< all nodes, in node order
};

/// Agent for both global-coordinated variants.
class GlobalAgent final : public proto::AgentBase {
 public:
  GlobalAgent(const proto::AgentContext& ctx, GlobalRuntime& rt);

  void start() override;
  void app_send(NodeId dst, std::uint64_t bytes, std::uint64_t app_seq) override;
  void on_message(const net::Envelope& env) override;
  void on_failure_detected(NodeId failed) override;

  SeqNum sn() const { return sn_; }
  bool in_round() const { return in_round_; }

 private:
  // Pre-resolved stats handles (per-message / per-round paths; see
  // AgentBase::named_stat).  The per-cluster pair is (clc.total, clc.unforced).
  stats::Counter* stat_stale_dropped_{nullptr};
  stats::Counter* stat_rollback_faults_{nullptr};
  stats::Counter* stat_rollback_count_{nullptr};
  stats::Counter* stat_rollback_nodes_{nullptr};
  stats::Summary* stat_freeze_{nullptr};
  stats::Summary* stat_rollback_depth_{nullptr};
  stats::Summary* stat_lost_work_{nullptr};
  std::vector<std::pair<stats::Counter*, stats::Counter*>> stat_clc_by_cluster_;

  struct GReq final : net::ControlPayload {
    static constexpr std::uint32_t kKind = 20;
    GReq() : ControlPayload(kKind) {}
    std::uint64_t round{0};
    Incarnation inc{0};
  };
  struct GAck final : net::ControlPayload {
    static constexpr std::uint32_t kKind = 21;
    GAck() : ControlPayload(kKind) {}
    std::uint64_t round{0};
    Incarnation inc{0};
    NodeId node{};
    proto::NodePart part;
  };
  /// Hierarchical mode: one aggregate ack per cluster.
  struct GClusterAck final : net::ControlPayload {
    static constexpr std::uint32_t kKind = 22;
    GClusterAck() : ControlPayload(kKind) {}
    std::uint64_t round{0};
    Incarnation inc{0};
    ClusterId cluster{};
    std::vector<proto::NodePart> parts;  ///< node order within the cluster
  };
  struct GCommit final : net::ControlPayload {
    static constexpr std::uint32_t kKind = 23;
    GCommit() : ControlPayload(kKind) {}
    std::uint64_t round{0};
    Incarnation inc{0};
    SeqNum sn{0};
  };

  bool is_global_coordinator() const { return self().v == 0; }
  void on_timer();
  void begin_round();
  void handle_req(const GReq& m);
  void handle_ack(const GAck& m);
  void handle_cluster_ack(const GClusterAck& m);
  void handle_commit(const GCommit& m);
  void take_tentative(std::uint64_t round);
  void commit_round();
  void global_rollback(bool fault_origin, ClusterId fault_cluster);
  void apply_rollback(const proto::ClcRecord& rec, Incarnation new_inc);
  void resume(const proto::ClcRecord& rec);
  SimTime restore_delay() const;
  proto::NodePart make_part() const;
  std::uint32_t local_index(NodeId n) const;

  GlobalRuntime& rt_;
  SeqNum sn_{0};
  Incarnation inc_{0};
  bool in_round_{false};
  std::uint64_t round_{0};
  std::optional<proto::NodePart> tentative_;
  struct QueuedSend {
    NodeId dst;
    std::uint64_t bytes;
    std::uint64_t app_seq;
  };
  std::vector<QueuedSend> queued_sends_;
  std::vector<net::Envelope> deferred_;
  bool rollback_pending_{false};
  bool pending_fault_recovery_{false};
  ClusterId pending_fault_cluster_{};
  std::vector<net::Envelope> post_rollback_stash_;

  // Global-coordinator round state (node 0 only).
  bool round_active_{false};
  std::uint64_t next_round_{1};
  std::vector<std::optional<proto::NodePart>> parts_;  ///< all nodes
  std::size_t acks_received_{0};
  std::unique_ptr<sim::Timer> timer_;
  SimTime round_started_{};

  // Cluster-coordinator aggregation state (hierarchical mode).
  std::vector<std::optional<proto::NodePart>> cluster_parts_;
  std::size_t cluster_acks_{0};
  std::uint64_t cluster_round_{0};
};

/// Build a factory; the runtime must outlive the federation.
proto::AgentFactory global_factory(GlobalRuntime& rt);

}  // namespace hc3i::baselines
