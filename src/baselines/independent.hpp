#pragma once

// Independent-checkpointing baseline: HC3I with the communication-induced
// forcing rule removed.
//
// The paper argues (§2.2) that a purely independent mechanism "does not fit
// either: tracking dependencies to compute the recovery line at rollback
// time would be very hard and nodes may rollback to very old checkpoints
// (domino effect)".  This baseline quantifies that claim: clusters still
// checkpoint with the intra-cluster 2PC on their timers, and inter-cluster
// messages still piggyback the sender SN, but no CLC is ever forced — the
// DDV entry is raised lazily at delivery time instead.  On a failure, the
// alert cascade must therefore fall back to the *newest* CLC that does NOT
// depend on the undone epoch, which can cascade all the way to the initial
// checkpoints (the domino effect the ablation bench measures).
//
// Garbage collection is unsupported (the recovery-line bound of paper §3.5
// relies on DDVs only changing at commits); the driver enforces that.

#include "hc3i/agent.hpp"

namespace hc3i::baselines {

/// HC3I minus forcing; see file comment.
class IndependentAgent final : public core::Hc3iAgent {
 public:
  using core::Hc3iAgent::Hc3iAgent;

 protected:
  bool cic_should_force(const net::Envelope&) const override { return false; }

  void on_inter_delivered(const net::Envelope& env) override {
    // Lazy dependency tracking: the delivery itself raises the local DDV
    // entry; the cluster DDV is the per-node max, merged at commit.
    ddv_.raise(env.src_cluster, env.piggy.sn);
  }

  bool decide_needs_rollback(ClusterId f, SeqNum restored_sn) const override {
    // Per-node DDVs diverge between commits, so the cluster-wide decision
    // needs the max over nodes (a real implementation would gather this
    // with an intra-cluster query; the simulator reads it directly).
    for (const core::Hc3iAgent* a : rt_.cluster_agents(cluster())) {
      if (a->ddv().at(f) >= restored_sn) return true;
    }
    return false;
  }

  const proto::ClcRecord* find_rollback_target(
      ClusterId f, SeqNum restored_sn) const override {
    // Without forcing, a CLC whose entry for f is >= restored_sn may
    // *contain* undone deliveries, so the only safe target is the newest
    // CLC that provably precedes them: ddv[f] < restored_sn.
    const proto::ClcRecord* best = nullptr;
    for (const proto::ClcRecord& rec : rt_.store(cluster()).records()) {
      if (rec.ddv.at(f) < restored_sn) best = &rec;
    }
    return best;  // the initial CLC always qualifies (ddv[f] == 0)
  }
};

/// Factory for Federation::build_agents.
proto::AgentFactory independent_factory(core::Hc3iRuntime& rt);

}  // namespace hc3i::baselines
